#include "core/report.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "util/format.hpp"

namespace dlbench::core {

namespace {

// Shortest round-trippable representation; always valid JSON. JSON has
// no NaN/Infinity literals, and the histogram's empty sentinel is NaN
// (see runtime/histogram.hpp) — non-finite values emit null so a
// fully-shed window never produces an unparsable or garbage p99.
std::string num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", ch);
          out += hex;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
  return out;
}

const char* boolean(bool b) { return b ? "true" : "false"; }

void append_trace_json(std::ostream& os,
                       const runtime::trace::TraceReport& trace) {
  os << "{\"spans\":[";
  for (std::size_t i = 0; i < trace.spans.size(); ++i) {
    const auto& s = trace.spans[i];
    os << (i ? "," : "") << "{\"name\":" << quoted(s.name)
       << ",\"category\":" << quoted(s.category) << ",\"count\":" << s.count
       << ",\"total_s\":" << num(s.total_s) << ",\"min_s\":" << num(s.min_s)
       << ",\"max_s\":" << num(s.max_s) << "}";
  }
  os << "],\"counters\":[";
  for (std::size_t i = 0; i < trace.counters.size(); ++i) {
    const auto& c = trace.counters[i];
    os << (i ? "," : "") << "{\"name\":" << quoted(c.name)
       << ",\"value\":" << c.value << ",\"peak\":" << c.peak
       << ",\"samples\":" << c.samples << "}";
  }
  os << "],\"dropped_events\":" << trace.dropped_events << "}";
}

}  // namespace

std::string run_status(const RunRecord& r) {
  if (r.failed()) return "ERROR";
  std::ostringstream os;
  if (r.train.converged) {
    os << "yes";
    if (r.train.recovery_attempts > 0)
      os << " (recovered x" << r.train.recovery_attempts << ")";
    return os.str();
  }
  os << "NO";
  if (r.train.timed_out) {
    os << " (timed out)";
  } else if (r.train.divergence_step >= 0) {
    os << " (diverged@" << r.train.divergence_step;
    if (r.train.recovery_attempts > 0)
      os << ", " << r.train.recovery_attempts << " recoveries";
    os << ")";
  }
  return os.str();
}

util::Table results_table(const std::string& title,
                          const std::vector<RunRecord>& records) {
  util::Table table({"Framework", "Default Settings", "Device",
                     "Training Time (s)", "Testing Time (s)",
                     "Accuracy (%)", "Converged"});
  table.set_title(title);
  for (const auto& r : records) {
    table.add_row({r.framework, r.setting, r.device,
                   util::format_seconds(r.train.train_time_s),
                   util::format_seconds(r.eval.test_time_s),
                   util::format_percent(r.eval.accuracy_pct),
                   run_status(r)});
  }
  return table;
}

std::string summarize(const RunRecord& r) {
  std::ostringstream os;
  os << r.framework << " [" << r.setting << "] on " << r.dataset << " ("
     << r.device << "): train " << util::format_seconds(r.train.train_time_s)
     << "s over " << r.train.steps << " steps ("
     << util::format_fixed(r.train.epochs_run, 2) << " epochs), test "
     << util::format_seconds(r.eval.test_time_s) << "s, accuracy "
     << util::format_percent(r.eval.accuracy_pct) << "%";
  if (r.train.recovery_attempts > 0 && !r.train.diverged) {
    os << "  [RECOVERED from divergence at step " << r.train.divergence_step
       << " after " << r.train.recovery_attempts << " rollback(s)]";
  }
  if (!r.train.converged) {
    os << "  [DID NOT CONVERGE";
    if (r.train.timed_out) {
      os << ": watchdog timeout";
    } else if (r.train.diverged) {
      os << ": diverged at step " << r.train.divergence_step << ", "
         << r.train.recovery_attempts << " recovery attempt(s) exhausted";
    }
    os << "]";
  }
  if (r.failed()) os << "  [ERROR: " << r.error << "]";
  return os.str();
}

void print_banner(const std::string& experiment_id,
                  const std::string& description,
                  const HarnessOptions& options) {
  std::cout << "==========================================================\n"
            << experiment_id << " — " << description << "\n"
            << "workload: MNIST " << options.mnist_train << "/"
            << options.mnist_test << ", CIFAR-10 " << options.cifar_train
            << "/" << options.cifar_test << " (train/test samples), "
            << "flop budgets mnist " << options.mnist_flop_budget
            << ", cifar " << options.cifar_flop_budget
            << "; small-batch step cap " << options.small_batch_step_cap
            << "\n"
            << "note: absolute numbers are bench-scale; compare shapes\n"
            << "      (ordering, ratios) against the paper values shown.\n"
            << "==========================================================\n";
}

std::string record_json(const RunRecord& r) {
  std::ostringstream os;
  os << "{\"framework\":" << quoted(r.framework)
     << ",\"setting\":" << quoted(r.setting)
     << ",\"dataset\":" << quoted(r.dataset)
     << ",\"device\":" << quoted(r.device)
     << ",\"error\":" << quoted(r.error);
  const auto& t = r.train;
  os << ",\"train\":{\"train_time_s\":" << num(t.train_time_s)
     << ",\"steps\":" << t.steps << ",\"epochs_run\":" << num(t.epochs_run)
     << ",\"final_loss\":" << num(t.final_loss)
     << ",\"converged\":" << boolean(t.converged)
     << ",\"divergence_step\":" << t.divergence_step
     << ",\"recovery_attempts\":" << t.recovery_attempts
     << ",\"diverged\":" << boolean(t.diverged)
     << ",\"timed_out\":" << boolean(t.timed_out)
     << ",\"phases\":{\"data_s\":" << num(t.phases.data_s)
     << ",\"forward_s\":" << num(t.phases.forward_s)
     << ",\"backward_s\":" << num(t.phases.backward_s)
     << ",\"optimizer_s\":" << num(t.phases.optimizer_s)
     << ",\"guard_s\":" << num(t.phases.guard_s) << "}"
     << ",\"loss_curve\":[";
  for (std::size_t i = 0; i < t.loss_curve.size(); ++i)
    os << (i ? "," : "") << "[" << t.loss_curve[i].first << ","
       << num(t.loss_curve[i].second) << "]";
  os << "]}";
  os << ",\"eval\":{\"test_time_s\":" << num(r.eval.test_time_s)
     << ",\"accuracy_pct\":" << num(r.eval.accuracy_pct)
     << ",\"correct\":" << r.eval.correct << ",\"total\":" << r.eval.total
     << "}";
  if (!r.trace.empty()) {
    os << ",\"trace\":";
    append_trace_json(os, r.trace);
  }
  os << "}";
  return os.str();
}

std::string records_json(const std::vector<RunRecord>& records) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < records.size(); ++i)
    os << (i ? ",\n " : "\n ") << record_json(records[i]);
  os << "\n]\n";
  return os.str();
}

bool write_records_json(const std::string& path,
                        const std::vector<RunRecord>& records) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "warning: cannot open " << path << " for writing\n";
    return false;
  }
  out << records_json(records);
  return out.good();
}

namespace {

// Latencies in ms with three decimals: serving numbers live in the
// 0.1–100 ms range where format_seconds's precision is too coarse.
std::string ms(double seconds) { return util::format_fixed(seconds * 1e3, 3); }

}  // namespace

util::Table serve_table(const std::string& title,
                        const std::vector<ServeRecord>& records) {
  util::Table table({"Framework", "Mode", "Repl", "Batch", "Offered (r/s)",
                     "Achieved (r/s)", "p50 (ms)", "p99 (ms)", "p999 (ms)",
                     "Rejected"});
  table.set_title(title);
  for (const auto& r : records) {
    table.add_row({r.framework, r.mode, std::to_string(r.replicas),
                   std::to_string(r.max_batch),
                   util::format_fixed(r.offered_rps, 0),
                   util::format_fixed(r.achieved_rps, 0),
                   ms(r.latency_p50_s), ms(r.latency_p99_s),
                   ms(r.latency_p999_s), std::to_string(r.rejected)});
  }
  return table;
}

std::string summarize(const ServeRecord& r) {
  std::ostringstream os;
  os << r.framework << " serve [" << r.mode << ", replicas=" << r.replicas
     << ", batch<=" << r.max_batch << "] on " << r.dataset << " ("
     << r.device << "): offered " << util::format_fixed(r.offered_rps, 0)
     << " r/s, achieved " << util::format_fixed(r.achieved_rps, 0)
     << " r/s, p50 " << ms(r.latency_p50_s) << "ms, p99 "
     << ms(r.latency_p99_s) << "ms, mean batch "
     << util::format_fixed(r.mean_batch, 2);
  if (r.rejected > 0) os << ", rejected " << r.rejected;
  return os.str();
}

std::string serve_record_json(const ServeRecord& r) {
  std::ostringstream os;
  os << "{\"framework\":" << quoted(r.framework)
     << ",\"dataset\":" << quoted(r.dataset) << ",\"mode\":" << quoted(r.mode)
     << ",\"device\":" << quoted(r.device) << ",\"replicas\":" << r.replicas
     << ",\"max_batch\":" << r.max_batch
     << ",\"max_batch_delay_s\":" << num(r.max_batch_delay_s)
     << ",\"duration_s\":" << num(r.duration_s)
     << ",\"offered_rps\":" << num(r.offered_rps)
     << ",\"achieved_rps\":" << num(r.achieved_rps)
     << ",\"issued\":" << r.issued << ",\"ok\":" << r.ok
     << ",\"rejected\":" << r.rejected
     << ",\"mean_batch\":" << num(r.mean_batch)
     << ",\"latency\":{\"mean_s\":" << num(r.latency_mean_s)
     << ",\"p50_s\":" << num(r.latency_p50_s)
     << ",\"p95_s\":" << num(r.latency_p95_s)
     << ",\"p99_s\":" << num(r.latency_p99_s)
     << ",\"p999_s\":" << num(r.latency_p999_s)
     << ",\"max_s\":" << num(r.latency_max_s) << "}"
     << ",\"server\":{\"max_queue_depth\":" << r.max_queue_depth
     << ",\"busy_s\":" << num(r.busy_s)
     << ",\"queue_wait_p50_s\":" << num(r.queue_wait_p50_s)
     << ",\"queue_wait_p99_s\":" << num(r.queue_wait_p99_s)
     << ",\"assemble_mean_s\":" << num(r.assemble_mean_s)
     << ",\"forward_mean_s\":" << num(r.forward_mean_s)
     << ",\"scatter_mean_s\":" << num(r.scatter_mean_s) << "}}";
  return os.str();
}

std::string serve_records_json(const std::vector<ServeRecord>& records) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < records.size(); ++i)
    os << (i ? ",\n " : "\n ") << serve_record_json(records[i]);
  os << "\n]\n";
  return os.str();
}

bool write_serve_records_json(const std::string& path,
                              const std::vector<ServeRecord>& records) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "warning: cannot open " << path << " for writing\n";
    return false;
  }
  out << serve_records_json(records);
  return out.good();
}

namespace {

// "3.2x" inflation / "never" recovery cells tolerant of NaN windows.
std::string ratio_cell(double v) {
  if (!std::isfinite(v)) return "n/a";
  return util::format_fixed(v, 2) + "x";
}

std::string recovery_cell(double v) {
  if (v < 0.0 || !std::isfinite(v)) return "never";
  return util::format_fixed(v, 2) + "s";
}

// Millisecond cell tolerant of the empty-histogram NaN sentinel.
std::string ms_cell(double seconds) {
  if (!std::isfinite(seconds)) return "n/a";
  return ms(seconds);
}

}  // namespace

util::Table chaos_table(const std::string& title,
                        const std::vector<ChaosRecord>& records) {
  util::Table table({"Scenario", "Sup", "Offered (r/s)", "Goodput (r/s)",
                     "p99 base (ms)", "p99 fault (ms)", "Inflation",
                     "Recovery", "Crash/Restart", "Retry", "Shed"});
  table.set_title(title);
  for (const auto& r : records) {
    table.add_row(
        {r.scenario, r.supervised ? "yes" : "no",
         util::format_fixed(r.offered_rps, 0),
         util::format_fixed(r.goodput_rps, 0), ms_cell(r.baseline_p99_s),
         ms_cell(r.faulted_p99_s), ratio_cell(r.p99_inflation),
         recovery_cell(r.recovery_s),
         std::to_string(r.crashes) + "/" + std::to_string(r.restarts),
         std::to_string(r.retries),
         std::to_string(r.expired + r.shed + r.rejected)});
  }
  return table;
}

std::string summarize(const ChaosRecord& r) {
  std::ostringstream os;
  os << r.framework << " gauntlet [" << r.scenario
     << (r.supervised ? ", supervised" : ", unsupervised")
     << ", replicas=" << r.replicas << "] on " << r.dataset << " ("
     << r.device << "): goodput " << util::format_fixed(r.goodput_rps, 0)
     << "/" << util::format_fixed(r.offered_rps, 0) << " r/s, p99 "
     << ms_cell(r.baseline_p99_s) << "ms -> " << ms_cell(r.faulted_p99_s)
     << "ms (" << ratio_cell(r.p99_inflation) << "), recovery "
     << recovery_cell(r.recovery_s) << ", crashes " << r.crashes << "/"
     << r.restarts << " restarted, retries " << r.retries << ", expired "
     << r.expired << ", shed " << r.shed;
  return os.str();
}

std::string chaos_record_json(const ChaosRecord& r) {
  std::ostringstream os;
  os << "{\"framework\":" << quoted(r.framework)
     << ",\"dataset\":" << quoted(r.dataset)
     << ",\"device\":" << quoted(r.device)
     << ",\"scenario\":" << quoted(r.scenario)
     << ",\"supervised\":" << boolean(r.supervised)
     << ",\"replicas\":" << r.replicas << ",\"max_batch\":" << r.max_batch
     << ",\"offered_rps\":" << num(r.offered_rps)
     << ",\"duration_s\":" << num(r.duration_s) << ",\"seed\":" << r.seed
     << ",\"issued\":" << r.issued << ",\"ok\":" << r.ok
     << ",\"rejected\":" << r.rejected << ",\"expired\":" << r.expired
     << ",\"errors\":" << r.errors << ",\"shed\":" << r.shed
     << ",\"goodput_rps\":" << num(r.goodput_rps)
     << ",\"latency\":{\"p50_s\":" << num(r.latency_p50_s)
     << ",\"p99_s\":" << num(r.latency_p99_s)
     << ",\"max_s\":" << num(r.latency_max_s) << "}"
     << ",\"degradation\":{\"baseline_p99_s\":" << num(r.baseline_p99_s)
     << ",\"faulted_p99_s\":" << num(r.faulted_p99_s)
     << ",\"p99_inflation\":" << num(r.p99_inflation)
     << ",\"recovery_s\":" << num(r.recovery_s) << "}"
     << ",\"events\":{\"crashes\":" << r.crashes
     << ",\"restarts\":" << r.restarts
     << ",\"stalls_replaced\":" << r.stalls_replaced
     << ",\"retries\":" << r.retries << ",\"hedges\":" << r.hedges
     << ",\"hedge_wins\":" << r.hedge_wins
     << ",\"corrupted\":" << r.corrupted
     << ",\"breaker_opens\":" << r.breaker_opens
     << ",\"breaker_closes\":" << r.breaker_closes << "}}";
  return os.str();
}

std::string chaos_records_json(const std::vector<ChaosRecord>& records) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < records.size(); ++i)
    os << (i ? ",\n " : "\n ") << chaos_record_json(records[i]);
  os << "\n]\n";
  return os.str();
}

bool write_chaos_records_json(const std::string& path,
                              const std::vector<ChaosRecord>& records) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "warning: cannot open " << path << " for writing\n";
    return false;
  }
  out << chaos_records_json(records);
  return out.good();
}

util::Table tenant_table(const std::string& title,
                         const std::vector<TenantRecord>& records) {
  util::Table table({"Scenario", "Tenant", "SLO", "W", "Offered (r/s)",
                     "Goodput (r/s)", "Shed", "Rej", "p50 (ms)", "p99 (ms)",
                     "Replicas"});
  table.set_title(title);
  for (const auto& r : records) {
    table.add_row({r.scenario, r.tenant, r.slo, std::to_string(r.weight),
                   util::format_fixed(r.offered_rps, 0),
                   util::format_fixed(r.goodput_rps, 0),
                   std::to_string(r.shed), std::to_string(r.rejected),
                   ms_cell(r.latency_p50_s), ms_cell(r.latency_p99_s),
                   std::to_string(r.replicas_min) + "-" +
                       std::to_string(r.replicas_max)});
  }
  return table;
}

std::string summarize(const TenantRecord& r) {
  std::ostringstream os;
  os << r.tenant << " [" << r.scenario << ", " << r.slo << ", w=" << r.weight
     << "] on " << r.model << ": goodput "
     << util::format_fixed(r.goodput_rps, 0) << "/"
     << util::format_fixed(r.offered_rps, 0) << " r/s, p50 "
     << ms_cell(r.latency_p50_s) << "ms, p99 " << ms_cell(r.latency_p99_s)
     << "ms, shed " << r.shed << ", rejected " << r.rejected << ", replicas "
     << r.replicas_min << "-" << r.replicas_max << " (" << r.scale_ups
     << " up/" << r.scale_downs << " down)";
  return os.str();
}

std::string tenant_record_json(const TenantRecord& r) {
  std::ostringstream os;
  os << "{\"scenario\":" << quoted(r.scenario)
     << ",\"tenant\":" << quoted(r.tenant) << ",\"model\":" << quoted(r.model)
     << ",\"slo\":" << quoted(r.slo) << ",\"weight\":" << r.weight
     << ",\"offered_rps\":" << num(r.offered_rps)
     << ",\"duration_s\":" << num(r.duration_s)
     << ",\"submitted\":" << r.submitted << ",\"admitted\":" << r.admitted
     << ",\"shed\":" << r.shed << ",\"rejected\":" << r.rejected
     << ",\"ok\":" << r.ok << ",\"failed\":" << r.failed
     << ",\"goodput_rps\":" << num(r.goodput_rps)
     << ",\"latency\":{\"p50_s\":" << num(r.latency_p50_s)
     << ",\"p99_s\":" << num(r.latency_p99_s)
     << ",\"max_s\":" << num(r.latency_max_s)
     << ",\"queue_wait_p99_s\":" << num(r.queue_wait_p99_s) << "}"
     << ",\"replicas\":{\"min\":" << r.replicas_min
     << ",\"max\":" << r.replicas_max << ",\"scale_ups\":" << r.scale_ups
     << ",\"scale_downs\":" << r.scale_downs << "}}";
  return os.str();
}

std::string tenant_records_json(const std::vector<TenantRecord>& records) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < records.size(); ++i)
    os << (i ? ",\n " : "\n ") << tenant_record_json(records[i]);
  os << "\n]\n";
  return os.str();
}

bool write_tenant_records_json(const std::string& path,
                               const std::vector<TenantRecord>& records) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "warning: cannot open " << path << " for writing\n";
    return false;
  }
  out << tenant_records_json(records);
  return out.good();
}

util::Table attack_table(const std::string& title,
                         const std::vector<AttackRecord>& records) {
  util::Table table({"Framework", "Attack", "Thr", "Attacks", "Success",
                     "Screen (s)", "Craft wall (s)", "mean (ms)", "p50 (ms)",
                     "p95 (ms)", "p99 (ms)"});
  table.set_title(title);
  for (const auto& r : records) {
    table.add_row({r.framework, r.attack, std::to_string(r.threads),
                   std::to_string(r.attacks),
                   util::format_fixed(r.success_rate, 3),
                   util::format_seconds(r.screening_s),
                   util::format_seconds(r.craft_wall_s),
                   util::format_fixed(r.craft_mean_s * 1e3, 3),
                   util::format_fixed(r.craft_p50_s * 1e3, 3),
                   util::format_fixed(r.craft_p95_s * 1e3, 3),
                   util::format_fixed(r.craft_p99_s * 1e3, 3)});
  }
  return table;
}

std::string summarize(const AttackRecord& r) {
  std::ostringstream os;
  os << r.framework << " " << r.attack << " [threads=" << r.threads << "] on "
     << r.dataset << " (" << r.device << "): " << r.successes << "/"
     << r.attacks << " (" << util::format_fixed(100.0 * r.success_rate, 1)
     << "%), craft wall " << util::format_seconds(r.craft_wall_s)
     << "s (screening " << util::format_seconds(r.screening_s) << "s), p50 "
     << util::format_fixed(r.craft_p50_s * 1e3, 3) << "ms, p99 "
     << util::format_fixed(r.craft_p99_s * 1e3, 3) << "ms";
  return os.str();
}

std::string attack_record_json(const AttackRecord& r) {
  std::ostringstream os;
  os << "{\"framework\":" << quoted(r.framework)
     << ",\"setting\":" << quoted(r.setting)
     << ",\"dataset\":" << quoted(r.dataset)
     << ",\"attack\":" << quoted(r.attack)
     << ",\"device\":" << quoted(r.device) << ",\"threads\":" << r.threads
     << ",\"attacks\":" << r.attacks << ",\"successes\":" << r.successes
     << ",\"success_rate\":" << num(r.success_rate)
     << ",\"total_iterations\":" << r.total_iterations
     << ",\"screening_s\":" << num(r.screening_s)
     << ",\"craft\":{\"wall_s\":" << num(r.craft_wall_s)
     << ",\"mean_s\":" << num(r.craft_mean_s)
     << ",\"p50_s\":" << num(r.craft_p50_s)
     << ",\"p95_s\":" << num(r.craft_p95_s)
     << ",\"p99_s\":" << num(r.craft_p99_s)
     << ",\"max_s\":" << num(r.craft_max_s) << "}}";
  return os.str();
}

std::string attack_records_json(const std::vector<AttackRecord>& records) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < records.size(); ++i)
    os << (i ? ",\n " : "\n ") << attack_record_json(records[i]);
  os << "\n]\n";
  return os.str();
}

bool write_attack_records_json(const std::string& path,
                               const std::vector<AttackRecord>& records) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "warning: cannot open " << path << " for writing\n";
    return false;
  }
  out << attack_records_json(records);
  return out.good();
}

util::Table comparison_table(const std::string& title,
                             const std::vector<PaperComparison>& rows) {
  util::Table table({"Quantity", "Paper", "Measured", "Unit"});
  table.set_title(title);
  for (const auto& row : rows) {
    table.add_row({row.label, util::format_fixed(row.paper_value, 2),
                   util::format_fixed(row.measured_value, 2), row.unit});
  }
  return table;
}

}  // namespace dlbench::core
