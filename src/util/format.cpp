#include "util/format.hpp"

#include <cctype>
#include <cstdio>

namespace dlbench::util {

std::string format_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string format_seconds(double seconds) {
  if (seconds < 10.0) return format_fixed(seconds, 3);
  return format_fixed(seconds, 2);
}

std::string format_percent(double fraction_0_to_100) {
  return format_fixed(fraction_0_to_100, 2);
}

std::string join(const std::vector<std::string>& pieces,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string to_lower(std::string s) {
  for (auto& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace dlbench::util
