#pragma once

// ASCII table rendering used by the bench harness to print paper-style
// tables (Tables I–IX) and figure data series.

#include <iosfwd>
#include <string>
#include <vector>

namespace dlbench::util {

/// A simple column-aligned ASCII table. Rows are added as string cells;
/// numeric formatting is the caller's job (see format.hpp helpers).
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Optional caption printed above the table.
  void set_title(std::string title);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return headers_.size(); }

  /// Renders with box-drawing separators.
  std::string to_string() const;

  /// Renders as CSV (title omitted).
  std::string to_csv() const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& t);

}  // namespace dlbench::util
