#pragma once

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
// used by zlib/gzip/PNG. The checkpoint container uses it to detect
// bit-rot and truncation in serialized model payloads.

#include <cstddef>
#include <cstdint>

namespace dlbench::util {

/// One-shot CRC-32 of a byte buffer.
std::uint32_t crc32(const void* data, std::size_t size);

/// Incremental form: feed `crc` from the previous call (start at 0).
std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                           std::size_t size);

}  // namespace dlbench::util
