#include "util/crc32.hpp"

#include <array>

namespace dlbench::util {

namespace {

// Table generated at first use from the reflected polynomial; identical
// to the zlib table, so checksums are comparable with external tools.
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                           std::size_t size) {
  const auto& table = crc_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i)
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(const void* data, std::size_t size) {
  return crc32_update(0, data, size);
}

}  // namespace dlbench::util
