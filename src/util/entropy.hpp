#pragma once

// Dataset entropy / sparsity statistics.
//
// The paper attributes MNIST's faster training and higher accuracy to
// its "sparseness and gray scale [that] give the data low entropy"
// (§III-B). These estimators let the data module report comparable
// statistics for the synthetic datasets so that the substitution can be
// validated quantitatively.

#include <cstddef>
#include <span>

namespace dlbench::util {

/// Shannon entropy (bits/value) of values in [0,1] histogrammed into
/// `bins` equal-width buckets. Returns 0 for empty input.
double shannon_entropy(std::span<const float> values, int bins = 32);

/// Fraction of values whose magnitude is <= `threshold`.
double sparsity(std::span<const float> values, float threshold = 0.05f);

/// Mean of the values (0 for empty input).
double mean(std::span<const float> values);

/// Population standard deviation (0 for empty input).
double stddev(std::span<const float> values);

}  // namespace dlbench::util
