#pragma once

// Error handling primitives for dlbench.
//
// The library throws dlbench::Error (a std::runtime_error) for
// recoverable misuse (bad shapes, bad configs). DLB_CHECK is the
// preferred way to validate preconditions on public API boundaries;
// DLB_ASSERT guards internal invariants and compiles out in NDEBUG.

#include <sstream>
#include <stdexcept>
#include <string>

namespace dlbench {

/// Exception type thrown by all dlbench components.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_error(const char* cond, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "dlbench check failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace dlbench

/// Validate a precondition; throws dlbench::Error with context on failure.
/// Usage: DLB_CHECK(x > 0, "x must be positive, got " << x);
#define DLB_CHECK(cond, msg_expr)                                        \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::ostringstream dlb_check_os_;                                  \
      dlb_check_os_ << msg_expr;                                         \
      ::dlbench::detail::throw_error(#cond, __FILE__, __LINE__,          \
                                     dlb_check_os_.str());               \
    }                                                                    \
  } while (false)

#ifdef NDEBUG
#define DLB_ASSERT(cond) ((void)0)
#else
#define DLB_ASSERT(cond) DLB_CHECK(cond, "internal invariant")
#endif
