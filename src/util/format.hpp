#pragma once

// Small string / number formatting helpers shared across modules.

#include <string>
#include <vector>

namespace dlbench::util {

/// Formats a double with `digits` digits after the decimal point.
std::string format_fixed(double value, int digits);

/// Formats seconds with adaptive precision ("68.51", "0.26", "12477.05").
std::string format_seconds(double seconds);

/// Formats a percentage like "99.22".
std::string format_percent(double fraction_0_to_100);

/// Joins string pieces with a separator.
std::string join(const std::vector<std::string>& pieces,
                 const std::string& sep);

/// Left/right pads `s` with spaces to `width` (no-op if already wider).
std::string pad_right(const std::string& s, std::size_t width);
std::string pad_left(const std::string& s, std::size_t width);

/// Lower-cases ASCII.
std::string to_lower(std::string s);

/// True if `s` starts with `prefix`.
bool starts_with(const std::string& s, const std::string& prefix);

}  // namespace dlbench::util
