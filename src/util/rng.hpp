#pragma once

// Deterministic pseudo-random number generation.
//
// Every stochastic component in dlbench (weight init, shuffling,
// dropout masks, synthetic data) draws from an explicitly seeded Rng so
// that experiments are bit-reproducible across runs and platforms. The
// generator is xoshiro256** (public domain, Blackman & Vigna), chosen
// over std::mt19937 for speed and for a guaranteed cross-platform
// output sequence.

#include <cstdint>

namespace dlbench::util {

/// Deterministic 64-bit PRNG (xoshiro256**) with convenience samplers.
class Rng {
 public:
  /// Seeds the stream; the same seed always yields the same sequence.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box–Muller (cached second variate).
  double normal();

  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p);

  /// Forks an independent child stream (for per-worker determinism).
  Rng fork();

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace dlbench::util
