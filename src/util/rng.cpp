#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace dlbench::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits → double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  DLB_CHECK(lo <= hi, "invalid uniform range [" << lo << ", " << hi << ")");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  DLB_CHECK(n > 0, "uniform_index requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -n % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] so log() is finite.
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace dlbench::util
