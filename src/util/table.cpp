#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/format.hpp"

namespace dlbench::util {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  DLB_CHECK(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  DLB_CHECK(cells.size() == headers_.size(),
            "row has " << cells.size() << " cells, expected "
                       << headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::set_title(std::string title) { title_ = std::move(title); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto rule = [&] {
    std::string s = "+";
    for (auto w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < cells.size(); ++c)
      s += " " + pad_right(cells[c], widths[c]) + " |";
    return s + "\n";
  };

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  out += rule();
  out += line(headers_);
  out += rule();
  for (const auto& row : rows_) out += line(row);
  out += rule();
  return out;
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += "\"\"";
      else q += ch;
    }
    return q + "\"";
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << (c ? "," : "") << escape(headers_[c]);
  os << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c ? "," : "") << escape(row[c]);
    os << "\n";
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.to_string();
}

}  // namespace dlbench::util
