#include "util/entropy.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace dlbench::util {

double shannon_entropy(std::span<const float> values, int bins) {
  DLB_CHECK(bins > 0, "entropy needs at least one bin");
  if (values.empty()) return 0.0;
  std::vector<std::size_t> hist(static_cast<std::size_t>(bins), 0);
  for (float v : values) {
    double clamped = std::clamp(static_cast<double>(v), 0.0, 1.0);
    auto idx = static_cast<std::size_t>(
        std::min<double>(clamped * bins, bins - 1));
    ++hist[idx];
  }
  double h = 0.0;
  const double n = static_cast<double>(values.size());
  for (std::size_t c : hist) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / n;
    h -= p * std::log2(p);
  }
  return h;
}

double sparsity(std::span<const float> values, float threshold) {
  if (values.empty()) return 0.0;
  std::size_t zeros = 0;
  for (float v : values)
    if (std::fabs(v) <= threshold) ++zeros;
  return static_cast<double>(zeros) / static_cast<double>(values.size());
}

double mean(std::span<const float> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (float v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(std::span<const float> values) {
  if (values.empty()) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (float v : values) {
    const double d = v - m;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(values.size()));
}

}  // namespace dlbench::util
