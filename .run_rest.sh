#!/bin/bash
cd /root/repo
B=build/bench
{
  echo "### RUNNING bench_fig3_mnist_dataset_defaults"
  $B/bench_fig3_mnist_dataset_defaults
  echo
  echo "### RUNNING bench_fig5_caffe_convergence"
  $B/bench_fig5_caffe_convergence
  echo
  echo "### RUNNING bench_fig6_mnist_framework_defaults"
  $B/bench_fig6_mnist_framework_defaults
  echo
  echo "### RUNNING bench_fig4_cifar_dataset_defaults (reduced: DLB_CIFAR_FLOPS=8e11)"
  DLB_CIFAR_FLOPS=8e11 $B/bench_fig4_cifar_dataset_defaults
  echo
  echo "### RUNNING bench_fig7_cifar_framework_defaults (reduced iteration floor: DLB_ITER_FRACTION=0.02)"
  DLB_ITER_FRACTION=0.02 $B/bench_fig7_cifar_framework_defaults
  echo
  echo "### RUNNING bench_fig8_fgsm_untargeted (tightened attack budget)"
  $B/bench_fig8_fgsm_untargeted
  echo
  echo "### RUNNING bench_micro_tensor"
  $B/bench_micro_tensor --benchmark_min_time=0.05
  echo
  echo "### RUNNING bench_ablation_execution"
  $B/bench_ablation_execution --benchmark_min_time=0.05
} > /root/repo/bench_output_part2.txt 2>&1
echo DONE > /root/repo/.rest_done
