// Quickstart: train one framework emulation on synthetic MNIST with its
// own default setting and print the paper-style metrics.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "core/dlbench.hpp"

int main() {
  using namespace dlbench;
  using frameworks::DatasetId;
  using frameworks::FrameworkKind;

  // The harness owns the synthetic datasets and the scaling policy.
  // Sizes can be overridden with DLB_MNIST_TRAIN etc.
  core::HarnessOptions options = core::HarnessOptions::from_env();
  core::Harness harness(options);

  std::cout << "DLBench quickstart: Caffe emulation, MNIST default setting\n";

  // CPU run (serial device) ...
  auto cpu = harness.run_default(FrameworkKind::kCaffe, DatasetId::kMnist,
                                 runtime::Device::cpu());
  std::cout << core::summarize(cpu) << "\n";

  // ... and GPU run (parallel device), same code path.
  auto gpu = harness.run_default(FrameworkKind::kCaffe, DatasetId::kMnist,
                                 runtime::Device::gpu());
  std::cout << core::summarize(gpu) << "\n";

  std::cout << "\nGPU speedup: training "
            << util::format_fixed(
                   cpu.train.train_time_s / gpu.train.train_time_s, 1)
            << "x, testing "
            << util::format_fixed(cpu.eval.test_time_s / gpu.eval.test_time_s,
                                  1)
            << "x\n";
  return 0;
}
