// Adversarial robustness walkthrough: train a model, then attack it
// with untargeted FGSM and targeted JSMA, printing per-attack details —
// a miniature of the paper's section III-E.

#include <iostream>

#include "core/dlbench.hpp"

int main() {
  using namespace dlbench;
  using frameworks::DatasetId;
  using frameworks::FrameworkKind;

  core::HarnessOptions options = core::HarnessOptions::test_profile();
  options.mnist_train = 600;
  options.mnist_test = 200;
  core::Harness harness(options);
  const auto device = runtime::Device::gpu();

  std::cout << "Training a Caffe-emulation MNIST model to attack...\n";
  auto trained = harness.train_model(FrameworkKind::kCaffe,
                                     FrameworkKind::kCaffe,
                                     DatasetId::kMnist, DatasetId::kMnist,
                                     device);
  std::cout << core::summarize(trained.record) << "\n\n";

  nn::Context ctx;
  ctx.device = device;

  // --- untargeted FGSM (paper Equation 1) ---
  adversarial::FgsmOptions fgsm;
  fgsm.epsilon = 0.02f;
  fgsm.max_iterations = 40;
  std::cout << "Untargeted FGSM (eps=" << fgsm.epsilon << "):\n";
  for (std::int64_t i = 0; i < 5; ++i) {
    tensor::Tensor x = trained.test.sample(i);
    const std::int64_t label = trained.test.labels[static_cast<std::size_t>(i)];
    auto out = adversarial::fgsm_attack(trained.model, x, label, fgsm, ctx);
    std::cout << "  digit " << label << ": "
              << (out.success ? "misclassified as " +
                                    std::to_string(out.final_class)
                              : std::string("attack failed"))
              << " after " << out.iterations << " iterations ("
              << util::format_fixed(100 * out.distortion_l0, 1)
              << "% pixels touched, "
              << util::format_seconds(out.craft_time_s) << "s)\n";
  }

  // --- targeted JSMA (paper Equation 2) ---
  adversarial::JsmaOptions jsma;
  jsma.theta = 1.0f;
  jsma.max_distortion = 0.10;
  std::cout << "\nTargeted JSMA (craft digit into target class):\n";
  for (std::int64_t i = 0; i < 5; ++i) {
    tensor::Tensor x = trained.test.sample(i);
    const std::int64_t label = trained.test.labels[static_cast<std::size_t>(i)];
    const std::int64_t target = (label + 1) % 10;
    auto out = adversarial::jsma_attack(trained.model, x, target, jsma, ctx);
    std::cout << "  digit " << label << " -> " << target << ": "
              << (out.success ? "success" : "failed") << " after "
              << out.iterations << " pixel flips ("
              << util::format_seconds(out.craft_time_s) << "s)\n";
  }
  return 0;
}
