// Command-line experiment runner: execute any single cell of the
// paper's methodology from the shell.
//
//   dlbench_cli <framework> [setting-framework] [setting-dataset]
//               [dataset] [device]
//
//   framework / setting-framework:  tf | caffe | torch
//   setting-dataset / dataset:      mnist | cifar
//   device:                         cpu | gpu
//
// Examples:
//   dlbench_cli caffe                       # Caffe, own MNIST default, GPU
//   dlbench_cli tf torch mnist mnist gpu    # TF runs Torch's MNIST setting
//   dlbench_cli caffe tf cifar cifar gpu    # the paper's divergent cell

#include <iostream>
#include <string>

#include "core/dlbench.hpp"

namespace {

using dlbench::frameworks::DatasetId;
using dlbench::frameworks::FrameworkKind;

bool parse_framework(const std::string& s, FrameworkKind& out) {
  const std::string v = dlbench::util::to_lower(s);
  if (v == "tf" || v == "tensorflow") out = FrameworkKind::kTensorFlow;
  else if (v == "caffe") out = FrameworkKind::kCaffe;
  else if (v == "torch") out = FrameworkKind::kTorch;
  else return false;
  return true;
}

bool parse_dataset(const std::string& s, DatasetId& out) {
  const std::string v = dlbench::util::to_lower(s);
  if (v == "mnist") out = DatasetId::kMnist;
  else if (v == "cifar" || v == "cifar-10" || v == "cifar10")
    out = DatasetId::kCifar10;
  else return false;
  return true;
}

int usage() {
  std::cerr << "usage: dlbench_cli <tf|caffe|torch> [setting-framework] "
               "[mnist|cifar] [mnist|cifar] [cpu|gpu]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dlbench;

  if (argc < 2) return usage();

  FrameworkKind fw;
  if (!parse_framework(argv[1], fw)) return usage();
  FrameworkKind setting_fw = fw;
  if (argc > 2 && !parse_framework(argv[2], setting_fw)) return usage();
  DatasetId setting_ds = DatasetId::kMnist;
  if (argc > 3 && !parse_dataset(argv[3], setting_ds)) return usage();
  DatasetId ds = setting_ds;
  if (argc > 4 && !parse_dataset(argv[4], ds)) return usage();
  auto device = runtime::Device::gpu();
  if (argc > 5) {
    const std::string v = util::to_lower(argv[5]);
    if (v == "cpu") device = runtime::Device::cpu();
    else if (v != "gpu") return usage();
  }

  try {
    core::HarnessOptions options = core::HarnessOptions::from_env();
    core::Harness harness(options);
    core::RunRecord record = harness.run(fw, setting_fw, setting_ds, ds,
                                         device);
    std::cout << core::summarize(record) << "\n"
              << core::results_table("Result", {record});
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
