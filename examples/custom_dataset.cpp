// Plugging your own dataset and network into the library: builds a
// two-class "vertical vs horizontal bars" dataset from scratch, defines
// a custom NetworkSpec, trains it with each framework emulation, and
// prints the comparison — i.e. using DLBench as a benchmarking harness
// for workloads the paper never shipped.

#include <iostream>
#include <vector>

#include "core/dlbench.hpp"

namespace {

using namespace dlbench;

// A deliberately tiny binary classification task: 16x16 images with a
// bar that is either vertical (class 0) or horizontal (class 1).
data::Dataset make_bars(std::int64_t n, std::uint64_t seed,
                        const char* split) {
  util::Rng rng(seed);
  data::Dataset d;
  d.name = std::string("bars/") + split;
  d.num_classes = 2;
  d.images = tensor::Tensor({n, 1, 16, 16});
  d.labels.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(i % 2);
    const int pos = static_cast<int>(rng.uniform_index(12)) + 2;
    float* img = d.images.raw() + i * 256;
    for (int t = 0; t < 16; ++t) {
      const int idx = cls == 0 ? t * 16 + pos : pos * 16 + t;
      img[idx] = static_cast<float>(rng.uniform(0.6, 1.0));
    }
    for (int k = 0; k < 256; ++k)
      img[k] = std::min(1.f, img[k] + static_cast<float>(
                                          std::max(0.0, rng.normal(0, 0.05))));
    d.labels[static_cast<std::size_t>(i)] = cls;
  }
  d.validate();
  return d;
}

}  // namespace

int main() {
  data::Dataset train = make_bars(400, 11, "train");
  data::Dataset test = make_bars(100, 12, "test");

  // A custom network described declaratively (conv -> pool -> fc).
  nn::NetworkSpec spec;
  spec.name = "bars-net";
  spec.input_channels = 1;
  spec.input_height = 16;
  spec.input_width = 16;
  spec.init = tensor::InitKind::kXavierUniform;
  spec.ops = {
      nn::LayerSpec::conv(8, 3, /*pad=*/1), nn::LayerSpec::relu(),
      nn::LayerSpec::max_pool(2, 2),
      nn::LayerSpec::linear(32),            nn::LayerSpec::relu(),
      nn::LayerSpec::linear(2),
  };

  // A custom training configuration (the "setting").
  frameworks::TrainingConfig config;
  config.label = "bars default";
  config.algo = frameworks::OptimizerAlgo::kSgd;
  config.base_lr = 0.05;
  config.batch_size = 32;
  config.epochs = 6;

  const auto device = runtime::Device::gpu();
  std::vector<core::RunRecord> records;
  for (frameworks::FrameworkKind kind : frameworks::kAllFrameworks) {
    auto fw = frameworks::make_framework(kind);
    util::Rng rng(1);
    nn::Sequential model = fw->build_model(spec, device, rng);
    core::RunRecord rec;
    rec.framework = fw->name();
    rec.setting = config.label;
    rec.dataset = train.name;
    rec.device = device.name();
    rec.train = fw->train(model, train, config, device, {});
    rec.eval = fw->evaluate(model, test, device);
    records.push_back(rec);
    std::cout << core::summarize(rec) << "\n";
  }
  std::cout << "\n"
            << core::results_table(
                   "Custom dataset: three emulations on bars", records);
  return 0;
}
