// Compare the three framework emulations on both synthetic datasets
// using each framework's own default settings (a miniature of the
// paper's Figures 1 and 2, GPU device).

#include <iostream>
#include <vector>

#include "core/dlbench.hpp"

int main() {
  using namespace dlbench;
  using frameworks::DatasetId;
  using frameworks::FrameworkKind;

  core::Harness harness;
  const auto device = runtime::Device::gpu();

  for (DatasetId data : frameworks::kAllDatasets) {
    std::vector<core::RunRecord> records;
    for (FrameworkKind fw : frameworks::kAllFrameworks) {
      records.push_back(harness.run_default(fw, data, device));
      std::cout << core::summarize(records.back()) << "\n";
    }
    std::cout << core::results_table(
        std::string("Baseline comparison on ") + frameworks::to_string(data),
        records);
    std::cout << "\n";
  }
  return 0;
}
