#!/usr/bin/env bash
# Quick performance smoke test for the packed SIMD GEMM / conv kernels
# (DESIGN.md §11): runs the GEMM and im2col-conv microbenchmarks for a
# couple of seconds and fails if any throughput falls more than 30%
# below the checked-in floor (scripts/perf_floor.txt, GFLOP/s recorded
# on the reference CI box in a deliberately slow phase — the gate
# catches real regressions such as a de-vectorized kernel or a spilled
# accumulator, not scheduler noise). Also prints the packed-vs-rows
# speedup per size, which the kernel acceptance in EXPERIMENTS.md
# tracks.
#
# On a different machine, scale the floors instead of editing the file:
#   DLB_PERF_FLOOR_SCALE=0.5 scripts/perf_smoke.sh
#
# Usage: scripts/perf_smoke.sh [build-dir]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
BENCH="$BUILD_DIR/bench/bench_micro_tensor"
if [ ! -x "$BENCH" ]; then
  echo "perf_smoke: $BENCH not built (cmake --build $BUILD_DIR)" >&2
  exit 2
fi

JSON="$(mktemp)"
trap 'rm -f "$JSON"' EXIT
"$BENCH" --benchmark_filter='Gemm(Packed|Rows)|ConvGemmLenet1' \
         --benchmark_min_time=0.15 \
         --benchmark_format=json >"$JSON"

python3 - "$JSON" scripts/perf_floor.txt <<'PY'
import json
import os
import sys

json_path, floor_path = sys.argv[1], sys.argv[2]
scale = float(os.environ.get("DLB_PERF_FLOOR_SCALE", "1.0"))
ALLOWED_REGRESSION = 0.30  # fail below 70% of the floor

floors = {}
with open(floor_path) as f:
    for line in f:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, value = line.split()
        floors[name] = float(value)

measured = {}
for bench in json.load(open(json_path))["benchmarks"]:
    if bench.get("run_type") == "aggregate":
        continue
    measured[bench["name"]] = bench["GFLOPs"]

failures = []
for name, floor in sorted(floors.items()):
    if name not in measured:
        failures.append(f"{name}: not measured (filter/registration changed?)")
        continue
    got = measured[name]
    gate = floor * scale * (1.0 - ALLOWED_REGRESSION)
    status = "ok" if got >= gate else "REGRESSION"
    print(f"{name:40s} {got:8.2f} GFLOP/s  (floor {floor:7.2f}, "
          f"gate {gate:7.2f})  {status}")
    if got < gate:
        failures.append(f"{name}: {got:.2f} GFLOP/s < gate {gate:.2f}")

for size in (256, 384, 512):
    packed = measured.get(f"BM_GemmPacked/{size}/real_time")
    rows = measured.get(f"BM_GemmRows/{size}/real_time")
    if packed and rows:
        print(f"packed-vs-rows speedup @ {size}^3: {packed / rows:.2f}x")

if failures:
    print("\nperf_smoke FAILED:", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print("\nperf_smoke OK")
PY
