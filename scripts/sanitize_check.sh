#!/usr/bin/env bash
# Builds the repo with AddressSanitizer + UBSan and runs the suites most
# likely to surface memory/lifetime bugs: the fault-injection tests
# (label `fault`), the numerical gradient/kernel differential tests
# (label `gradcheck`), which hammer the threaded kernels, the SIMD
# packed-GEMM / conv micro-kernel suites (label `kernels` — packing
# scratch buffers, edge-tile padding, wide-tile stores), and the
# inference-serving tests (label `serve`), whose batcher moves tensors
# across threads, and the serving chaos suite (label `chaos` — injected
# replica crashes, stalls and retries exercise the supervisor's
# requeue/restart lifetimes), and the multi-tenant fleet suite (label
# `fleet` — replica retirement and cross-thread promise hand-offs).
# For data races specifically, see tsan_check.sh.
#
# Usage: scripts/sanitize_check.sh [build-dir]   (default: build-asan)
# Equivalent preset: cmake --preset sanitize && cmake --build --preset sanitize

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-asan}"
SANITIZERS="${DLBENCH_SANITIZE:-address,undefined}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDLBENCH_SANITIZE="$SANITIZERS"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" -L 'fault|gradcheck|serve|kernels|attack|chaos|fleet' --output-on-failure -j "$(nproc)"
