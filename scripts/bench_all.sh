#!/usr/bin/env bash
# One-shot performance snapshot across every subsystem, written as
# BENCH_<pr>.json so the repo carries a perf trajectory (ROADMAP 5a)
# instead of scattered one-off numbers. Four headline metrics plus the
# chaos gauntlet's supervised-recovery cell and the multi-tenant fleet
# cell:
#
#   gemm_gflops      packed SIMD GEMM @ 384^3 (bench_micro_tensor)
#   train_step_ms    mean optimizer step, TF-default MNIST net on CPU
#                    (bench_fig1_mnist_baseline, step-capped)
#   serve_p99_ms     best serving-cell p99 (bench_serve --quick)
#   craft_p95_ms     best adversarial craft p95 (bench_fig8, FGSM)
#   gauntlet         supervised crash cell: goodput, p99 inflation,
#                    recovery window (bench_gauntlet --quick)
#   fleet            weighted-fair + SLO overload cell (drr_slo):
#                    worst-tenant p99, gold p99, aggregate goodput,
#                    bronze sheds (bench_serve "tenants" records)
#
# Training/attack cells are step-capped (DLB_STEP_CAP, default 40) so a
# snapshot takes minutes, not hours; per-step and per-attack times are
# scale-free, and the cap used is recorded in the JSON. Override:
#   DLB_STEP_CAP=0 scripts/bench_all.sh     # full-length training cells
#
# Usage: scripts/bench_all.sh [out.json] [build-dir]
#        (defaults: BENCH_8.json, build)

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_8.json}"
BUILD_DIR="${2:-build}"
export DLB_STEP_CAP="${DLB_STEP_CAP:-40}"

for bin in bench_micro_tensor bench_fig1_mnist_baseline bench_serve \
           bench_fig8_fgsm_untargeted bench_gauntlet; do
  if [ ! -x "$BUILD_DIR/bench/$bin" ]; then
    echo "bench_all: $BUILD_DIR/bench/$bin not built (cmake --build $BUILD_DIR)" >&2
    exit 2
  fi
done

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "=== bench_all: GEMM micro ==="
"$BUILD_DIR/bench/bench_micro_tensor" \
  --benchmark_filter='BM_GemmPacked/384' \
  --benchmark_min_time=0.15 \
  --benchmark_format=json >"$TMP/gemm.json"

echo "=== bench_all: training baseline (step cap $DLB_STEP_CAP) ==="
"$BUILD_DIR/bench/bench_fig1_mnist_baseline" --json-out="$TMP/train.json"

echo "=== bench_all: serving ==="
"$BUILD_DIR/bench/bench_serve" --quick --json-out="$TMP/serve.json"

echo "=== bench_all: adversarial crafting (step cap $DLB_STEP_CAP) ==="
"$BUILD_DIR/bench/bench_fig8_fgsm_untargeted" --json-out="$TMP/craft.json"

echo "=== bench_all: chaos gauntlet ==="
"$BUILD_DIR/bench/bench_gauntlet" --quick --json-out="$TMP/chaos.json"

python3 - "$TMP" "$OUT" <<'PY'
import datetime
import json
import os
import sys

tmp, out = sys.argv[1], sys.argv[2]


def load(name, kind=None):
    """Record list from a --json-out file: bare array when the bench
    emitted one record kind, keyed object ("runs"/"serve"/...) when
    mixed."""
    with open(os.path.join(tmp, name)) as f:
        doc = json.load(f)
    if isinstance(doc, dict) and kind is not None:
        return doc[kind]
    return doc


gemm = next(b for b in load("gemm.json")["benchmarks"]
            if b.get("run_type") != "aggregate")

# Mean optimizer-step time of the TF-default MNIST net on CPU — the
# first fig1 cell; per-step time is independent of the step cap.
train = next(r for r in load("train.json", "runs")
             if r["device"] == "CPU" and not r["error"])
step_ms = 1e3 * train["train"]["train_time_s"] / train["train"]["steps"]

serve = load("serve.json", "serve")
serve_p99_ms = 1e3 * min(r["latency"]["p99_s"] for r in serve)

craft = load("craft.json", "attack")
craft_p95_ms = 1e3 * min(r["craft"]["p95_s"] for r in craft)

chaos = load("chaos.json", "chaos")
crash_sup = next(r for r in chaos
                 if r["scenario"] == "crash" and r["supervised"])

# Multi-tenant fleet: the weighted-fair + SLO-admission overload cell.
# Worst-tenant p99 is the bronze flood paying for its own excess;
# aggregate goodput shows the control plane still serving near
# capacity while it sheds.
tenants = [t for t in load("serve.json", "tenants")
           if t["scenario"] == "drr_slo"]
fleet_worst_p99 = max(t["latency"]["p99_s"] for t in tenants)
fleet_gold_p99 = next(t["latency"]["p99_s"] for t in tenants
                      if t["slo"] == "gold")
fleet_goodput = sum(t["goodput_rps"] for t in tenants)

snapshot = {
    "snapshot": os.path.splitext(os.path.basename(out))[0],
    "date": datetime.date.today().isoformat(),
    "step_cap": int(os.environ.get("DLB_STEP_CAP", "0")),
    "gemm_gflops": round(gemm["GFLOPs"], 2),
    "train_step_ms": round(step_ms, 3),
    "serve_p99_ms": round(serve_p99_ms, 3),
    "craft_p95_ms": round(craft_p95_ms, 3),
    "gauntlet": {
        "goodput_rps": round(crash_sup["goodput_rps"], 1),
        "offered_rps": round(crash_sup["offered_rps"], 1),
        "p99_inflation": (None
                          if crash_sup["degradation"]["p99_inflation"] is None
                          else round(
                              crash_sup["degradation"]["p99_inflation"], 2)),
        "recovery_s": crash_sup["degradation"]["recovery_s"],
        "crashes": crash_sup["events"]["crashes"],
        "restarts": crash_sup["events"]["restarts"],
    },
    "fleet": {
        "worst_tenant_p99_ms": round(1e3 * fleet_worst_p99, 3),
        "gold_p99_ms": round(1e3 * fleet_gold_p99, 3),
        "goodput_rps": round(fleet_goodput, 1),
        "bronze_shed": sum(t["shed"] for t in tenants),
    },
}
with open(out, "w") as f:
    json.dump(snapshot, f, indent=2)
    f.write("\n")
print(f"\nbench_all snapshot -> {out}")
print(json.dumps(snapshot, indent=2))
PY
