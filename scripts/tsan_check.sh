#!/usr/bin/env bash
# Builds the repo with ThreadSanitizer and runs the suites that exercise
# real cross-thread interleavings: the inference-serving tests (label
# `serve` — MPMC queue, dynamic batcher, replica threads, histogram
# merges), the tracing tests (label `trace` — thread-local event buffers
# under an atomic scope pointer), the fault-injection tests (label
# `fault`), the kernel suites (label `kernels` — the packed GEMM
# macro loop splits row panels across pool workers and its determinism
# tests run the same shapes under several thread counts), and the
# serving chaos suite (label `chaos` — crash requeues, stall
# abandonment, hedged first-wins claims and retry heaps are exactly the
# cross-thread hand-offs TSan exists for), and the multi-tenant fleet
# suite (label `fleet` — dispatcher/watcher/autoscaler interplay over
# live replica pools). ASan/UBSan
# (sanitize_check.sh) cannot see data races; this is the suite that
# would have caught a misordered stats commit or an unlocked histogram.
#
# Usage: scripts/tsan_check.sh [build-dir]   (default: build-tsan)
# Equivalent preset: cmake --preset tsan && cmake --build --preset tsan
#                    && ctest --preset tsan

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDLBENCH_SANITIZE=thread
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" -L 'serve|trace|fault|kernels|attack|chaos|fleet' --output-on-failure \
  -j "$(nproc)"
