#!/bin/bash
# Assemble the final bench_output.txt from the three run files.
cd /root/repo
{
  cat bench_output.txt
  echo
  echo "### RUNNING bench_fig9_tables8_9_jsma (ran concurrently; see EXPERIMENTS.md note)"
  cat .fig9_out.txt
  echo
  cat bench_output_part2.txt
} > bench_output_final.txt
mv bench_output_final.txt bench_output.txt
rm -f .fig8_out.txt .fig9_out.txt bench_output_part2.txt .adv_done .rest_done .bench_done .run_rest.sh .assemble.sh
